package dht_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"p2pltr/internal/chord"
	"p2pltr/internal/core"
	"p2pltr/internal/ids"
	"p2pltr/internal/transport"
	"p2pltr/internal/vclock"
)

// virtualRing seeds a consistent ring of core peers on a virtual-time
// simnet; the test goroutine is registered as the simulation driver.
func virtualRing(t *testing.T, n int) (*vclock.Virtual, *transport.Simnet, []*core.Peer) {
	t.Helper()
	clk := vclock.NewVirtual()
	net := transport.NewSimnet(
		transport.WithClock(clk),
		transport.WithLatency(transport.ConstantLatency(time.Millisecond)),
	)
	cfg := chord.FastConfig()
	cfg.Clock = clk
	// Register the test goroutine as the driver BEFORE spawning any node
	// goroutine: otherwise the scheduler can observe quiescence mid-setup
	// and fire the first ticks while later nodes are still starting.
	clk.Register()
	peers := make([]*core.Peer, n)
	nodes := make([]*chord.Node, n)
	for i := range peers {
		peers[i] = core.NewPeer(net.NewEndpoint(fmt.Sprintf("vr-%02d", i)), core.Options{Chord: cfg, Clock: clk})
		nodes[i] = peers[i].Node
	}
	chord.SeedRing(nodes)
	t.Cleanup(func() {
		for _, p := range peers {
			p.Stop()
		}
		clk.Unregister()
	})
	return clk, net, peers
}

// holderAndSucc locates the peer whose primary store holds ring
// position id and that peer's current successor.
func holderAndSucc(t *testing.T, peers []*core.Peer, id ids.ID) (owner, succ *core.Peer) {
	t.Helper()
	for _, p := range peers {
		if _, ok := p.DHT.Store().Get(id); ok {
			owner = p
		}
	}
	if owner == nil {
		t.Fatalf("no store holds %v", id)
	}
	succAddr := owner.Node.Successor().Addr
	for _, p := range peers {
		if string(p.Addr()) == succAddr {
			succ = p
		}
	}
	if succ == nil {
		t.Fatalf("successor %s of %s not found", succAddr, owner)
	}
	return owner, succ
}

// clientAway returns a running peer that is none of the given ones, to
// drive RPCs from outside the partitioned/crashed set.
func clientAway(t *testing.T, peers []*core.Peer, not ...*core.Peer) *core.Peer {
	t.Helper()
	for _, p := range peers {
		if !p.Node.Running() {
			continue
		}
		excluded := false
		for _, x := range not {
			if p == x {
				excluded = true
			}
		}
		if !excluded {
			return p
		}
	}
	t.Fatal("no live peer outside the excluded set")
	return nil
}

// slotCount counts how many stores (primary or replica) anywhere in the
// ring still hold ring position id.
func slotCount(peers []*core.Peer, id ids.ID) int {
	n := 0
	for _, p := range peers {
		if _, ok := p.DHT.Store().Get(id); ok {
			n++
		}
		if _, ok := p.DHT.ReplicaStore().Get(id); ok {
			n++
		}
	}
	return n
}

// waitVirtual advances virtual time until cond holds, failing after the
// (virtual) budget.
func waitVirtual(t *testing.T, clk *vclock.Virtual, budget time.Duration, what string, cond func() bool) {
	t.Helper()
	ctx := context.Background()
	t0 := clk.Now()
	for !cond() {
		if clk.Since(t0) > budget {
			t.Fatalf("%s did not happen within %v of virtual time", what, budget)
		}
		_ = clk.Sleep(ctx, 5*time.Millisecond)
	}
}

// TestTruncationFloorStopsResurrection forces the ROADMAP's
// truncated-slot resurrection race under virtual time, in both flavors.
//
// Flavor 1 (lost copy delete, owner survives a while): the successor
// misses the async replica delete of a truncated slot behind a
// partition. Without the truncation low-water mark, its stale copy
// waits to be promoted at the next owner crash — and no later sweep
// revisits reclaimed history, so the replica leaks forever. With it,
// the floor piggybacked on the owner's next maintenance refresh reaches
// the successor, which reclaims the copy before any promotion chance.
//
// Flavor 2 (owner dies immediately): the successor promotes the stale
// copy — the floor never reached it — and the resurrected slot then
// falls to the floor carried by the next truncation sweep, which the
// successor now serves as the slot's new owner.
func TestTruncationFloorStopsResurrection(t *testing.T) {
	clk, net, peers := virtualRing(t, 8)
	ctx := context.Background()

	publish := func(key string, ts uint64) ids.ID {
		slot := ids.ReplicaHash(0, key, ts)
		_, _, err := peers[0].Client.PutID(ctx, slot, ids.LogSlotName(key, ts, 0), []byte("patch"), true)
		if err != nil {
			t.Fatalf("publish %s/%d: %v", key, ts, err)
		}
		return slot
	}

	// --- Flavor 1: floor reaches the successor via the refresh. ---
	key1 := "res-doc-1"
	slot1 := publish(key1, 1)
	owner1, succ1 := holderAndSucc(t, peers, slot1)
	waitVirtual(t, clk, 10*time.Second, "successor copy of slot1", func() bool {
		_, ok := succ1.DHT.ReplicaStore().Get(slot1)
		return ok
	})

	// Truncate with the successor partitioned away: the primary delete
	// lands, the async replica delete is lost — the exact race window.
	caller := clientAway(t, peers, owner1, succ1)
	net.Partition([]transport.Addr{succ1.Addr()})
	if n, err := caller.Client.DeleteSlotID(ctx, slot1, key1, 1); err != nil || n == 0 {
		t.Fatalf("truncation delete: n=%d err=%v", n, err)
	}
	_ = clk.Sleep(ctx, 10*time.Millisecond) // let the doomed replica delete fire
	net.Heal()
	if _, ok := succ1.DHT.ReplicaStore().Get(slot1); !ok {
		t.Fatal("race not forced: the successor lost its stale copy before the partition healed")
	}

	// The owner's next maintenance refresh carries the floor; the
	// successor must sweep the stale copy on learning it.
	waitVirtual(t, clk, 10*time.Second, "floor-driven replica sweep", func() bool {
		_, ok := succ1.DHT.ReplicaStore().Get(slot1)
		return !ok
	})
	net.Crash(owner1.Addr())
	owner1.Stop()
	_ = clk.Sleep(ctx, 2*time.Second) // takeover, promotion passes, re-replication
	if n := slotCount(peers, slot1); n != 0 {
		t.Fatalf("flavor 1: %d store(s) still hold the truncated slot after owner crash", n)
	}

	// --- Flavor 2: owner dies before any refresh; the next sweep's
	// floor reclaims the resurrected slot. ---
	var key2 string
	var slot2 ids.ID
	var owner2, succ2 *core.Peer
	for i := 0; ; i++ { // pick a key whose owner pair is still alive
		key2 = fmt.Sprintf("res-doc-2-%d", i)
		slot2 = ids.ReplicaHash(0, key2, 1)
		publish(key2, 1)
		owner2, succ2 = holderAndSucc(t, peers, slot2)
		if owner2.Node.Running() && succ2.Node.Running() && owner2 != succ2 {
			break
		}
	}
	waitVirtual(t, clk, 10*time.Second, "successor copy of slot2", func() bool {
		_, ok := succ2.DHT.ReplicaStore().Get(slot2)
		return ok
	})
	caller = clientAway(t, peers, owner2, succ2)
	net.Partition([]transport.Addr{succ2.Addr()})
	if n, err := caller.Client.DeleteSlotID(ctx, slot2, key2, 1); err != nil || n == 0 {
		t.Fatalf("truncation delete: n=%d err=%v", n, err)
	}
	_ = clk.Sleep(ctx, 10*time.Millisecond)
	net.Heal()
	net.Crash(owner2.Addr()) // before any floor-carrying refresh
	owner2.Stop()

	// The successor — now the owner — promotes the stale copy: the leak
	// the low-water mark exists to stop is real.
	waitVirtual(t, clk, 30*time.Second, "stale-copy resurrection", func() bool {
		_, ok := succ2.DHT.Store().Get(slot2)
		return ok
	})

	// A later truncation sweep of the same prefix delivers the floor to
	// the new owner, which must reclaim the resurrected slot — zero
	// resurrected replicas anywhere once the sweep lands.
	if _, err := caller.Log.TruncateTo(ctx, key2, 0, 1); err != nil {
		t.Fatalf("re-sweep: %v", err)
	}
	waitVirtual(t, clk, 10*time.Second, "floor sweep of the resurrected slot", func() bool {
		return slotCount(peers, slot2) == 0
	})
}
