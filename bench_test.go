// Package p2pltr's root benchmarks regenerate the paper's evaluation
// under `go test -bench`. Each BenchmarkE* corresponds to one experiment
// of DESIGN.md §4 (table/figure/scenario); custom metrics report the
// quantities the paper demonstrates (latency, behind-rounds, hops,
// availability). BenchmarkCore* microbenchmarks cover the primitive
// operations underneath.
package main

import (
	"context"
	"fmt"
	"testing"
	"time"

	"p2pltr/internal/core"
	"p2pltr/internal/gateway"
	"p2pltr/internal/ids"
	"p2pltr/internal/p2plog"
	"p2pltr/internal/ringtest"
	"p2pltr/internal/transport"
)

func mustCluster(b *testing.B, n int, opts core.Options) *ringtest.Cluster {
	b.Helper()
	c, err := ringtest.NewCluster(n, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Stop)
	return c
}

// BenchmarkE1TimestampGeneration measures gen_ts validation for fresh
// documents across the ring (Figure 4 / scenario 1).
func BenchmarkE1TimestampGeneration(b *testing.B) {
	c := mustCluster(b, 8, ringtest.FastOptions())
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("bench-doc-%d", i)
		r := core.NewReplica(c.Peers[i%len(c.Peers)], key, "bench")
		if err := r.Insert(0, "x"); err != nil {
			b.Fatal(err)
		}
		ts, err := r.Commit(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if ts != 1 {
			b.Fatalf("continuity: first ts = %d", ts)
		}
	}
}

// BenchmarkE2ConcurrentPublish measures commit latency under W concurrent
// updaters of one document (Figure 5 / scenario 2).
func BenchmarkE2ConcurrentPublish(b *testing.B) {
	for _, writers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			c := mustCluster(b, 8, ringtest.FastOptions())
			ctx := context.Background()
			key := "bench-contested"
			replicas := make([]*core.Replica, writers)
			for i := range replicas {
				replicas[i] = core.NewReplica(c.Peers[i%len(c.Peers)], key, fmt.Sprintf("w%d", i))
			}
			b.ResetTimer()
			done := make(chan error, writers)
			per := b.N/writers + 1
			for _, r := range replicas {
				go func(r *core.Replica) {
					for k := 0; k < per; k++ {
						if err := r.Insert(0, "line"); err != nil {
							done <- err
							return
						}
						if _, err := r.Commit(ctx); err != nil {
							done <- err
							return
						}
					}
					done <- nil
				}(r)
			}
			for i := 0; i < writers; i++ {
				if err := <-done; err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			var behind int64
			for _, r := range replicas {
				bh, _ := r.Stats()
				behind += bh
			}
			b.ReportMetric(float64(behind)/float64(b.N), "behind-rounds/op")
		})
	}
}

// BenchmarkE3MasterFailover measures the takeover gap after crashing the
// Master-key (scenario 3).
func BenchmarkE3MasterFailover(b *testing.B) {
	ctx := context.Background()
	var total time.Duration
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := ringtest.NewCluster(8, ringtest.FastOptions())
		if err != nil {
			b.Fatal(err)
		}
		key := fmt.Sprintf("failover-%d", i)
		master := c.MasterOf(uint64(ids.HashTS(key)))
		var host *core.Peer
		for _, p := range c.Peers {
			if p != master {
				host = p
				break
			}
		}
		r := core.NewReplica(host, key, "bench")
		if err := r.Insert(0, "pre"); err != nil {
			b.Fatal(err)
		}
		if _, err := r.Commit(ctx); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		start := time.Now()
		c.Crash(master)
		if err := r.Insert(0, "post"); err != nil {
			b.Fatal(err)
		}
		ts, err := r.Commit(ctx)
		if err != nil {
			b.Fatal(err)
		}
		total += time.Since(start)
		b.StopTimer()
		if ts != 2 {
			b.Fatalf("continuity broken across failover: ts=%d", ts)
		}
		c.Stop()
	}
	if b.N > 0 {
		b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "takeover-ms/op")
	}
}

// BenchmarkE4MasterJoin measures commit continuity cost while peers join
// (scenario 4).
func BenchmarkE4MasterJoin(b *testing.B) {
	c := mustCluster(b, 4, ringtest.FastOptions())
	ctx := context.Background()
	r := core.NewReplica(c.Peers[0], "join-doc", "bench")
	expected := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Periodically grow the ring mid-workload (capped so large b.N
		// does not build a thousand-peer ring).
		if i%8 == 3 && len(c.Peers) < 16 {
			b.StopTimer()
			if _, err := c.AddPeer(c.Peers[0]); err != nil {
				b.Fatal(err)
			}
			if err := c.WaitStable(time.Minute); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		if err := r.Insert(0, "x"); err != nil {
			b.Fatal(err)
		}
		ts, err := r.Commit(ctx)
		if err != nil {
			b.Fatal(err)
		}
		expected++
		if ts != expected {
			b.Fatalf("continuity across joins: ts=%d want %d", ts, expected)
		}
	}
}

// BenchmarkE5Lookup measures FindSuccessor latency and hops per ring size
// ("response times").
func BenchmarkE5Lookup(b *testing.B) {
	for _, n := range []int{4, 16, 32} {
		b.Run(fmt.Sprintf("peers=%d", n), func(b *testing.B) {
			c := mustCluster(b, n, ringtest.FastOptions())
			time.Sleep(100 * time.Millisecond) // warm fingers
			ctx := context.Background()
			var hops int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, h, err := c.Peers[i%n].Node.FindSuccessor(ctx, ids.ID(uint64(i)*0x9E3779B97F4A7C15))
				if err != nil {
					b.Fatal(err)
				}
				hops += h
			}
			b.ReportMetric(float64(hops)/float64(b.N), "hops/op")
		})
	}
}

// BenchmarkE6LogPublish measures sendToPublish for replication factors
// n = |Hr| (availability ablation's write cost).
func BenchmarkE6LogPublish(b *testing.B) {
	for _, replicas := range []int{1, 3, 5} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			opts := ringtest.FastOptions()
			opts.LogReplicas = replicas
			c := mustCluster(b, 8, opts)
			ctx := context.Background()
			log := c.Peers[0].Log
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := p2plog.Record{
					Key: "bench-doc", TS: uint64(i + 1),
					PatchID: fmt.Sprintf("b#%d", i+1), Patch: []byte("payload"),
				}
				if _, err := log.Publish(ctx, rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7Retrieval measures the total-order retrieval procedure
// (baseline comparison's read path).
func BenchmarkE7Retrieval(b *testing.B) {
	c := mustCluster(b, 8, ringtest.FastOptions())
	ctx := context.Background()
	log := c.Peers[0].Log
	const depth = 16
	for ts := uint64(1); ts <= depth; ts++ {
		rec := p2plog.Record{Key: "bench-doc", TS: ts, PatchID: fmt.Sprintf("b#%d", ts), Patch: []byte("payload")}
		if _, err := log.Publish(ctx, rec); err != nil {
			b.Fatal(err)
		}
	}
	reader := c.Peers[3].Log
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs, err := reader.FetchRange(ctx, "bench-doc", 0, depth)
		if err != nil {
			b.Fatal(err)
		}
		if len(recs) != depth {
			b.Fatalf("got %d records", len(recs))
		}
	}
}

// BenchmarkE8PullUnderReplication measures Pull cost when behind by k
// committed patches (the churn recovery path).
func BenchmarkE8PullUnderReplication(b *testing.B) {
	c := mustCluster(b, 8, ringtest.FastOptions())
	ctx := context.Background()
	writer := core.NewReplica(c.Peers[0], "bench-doc", "writer")
	const backlog = 8
	for i := 0; i < backlog; i++ {
		if err := writer.Insert(0, "x"); err != nil {
			b.Fatal(err)
		}
		if _, err := writer.Commit(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := core.NewReplica(c.Peers[i%len(c.Peers)], "bench-doc", fmt.Sprintf("reader%d", i))
		if err := r.Pull(ctx); err != nil {
			b.Fatal(err)
		}
		if r.CommittedTS() != backlog {
			b.Fatalf("pull stopped at %d", r.CommittedTS())
		}
	}
}

// BenchmarkE9ColdJoinCatchup measures a fresh replica catching up on a
// deep document history, with and without the checkpoint subsystem: the
// checkpointed join fetches O(interval) patches, the baseline O(history).
func BenchmarkE9ColdJoinCatchup(b *testing.B) {
	const history = 50 // not a multiple of interval: joins replay a real tail
	const interval = 8
	for _, mode := range []struct {
		name     string
		interval uint64
	}{{"baseline", 0}, {"checkpointed", interval}} {
		b.Run(mode.name, func(b *testing.B) {
			opts := ringtest.FastOptions()
			opts.CheckpointInterval = mode.interval
			c := mustCluster(b, 8, opts)
			ctx := context.Background()
			writer := core.NewReplica(c.Peers[0], "bench-doc", "writer")
			for i := 0; i < history; i++ {
				if err := writer.Insert(0, "x"); err != nil {
					b.Fatal(err)
				}
				if _, err := writer.Commit(ctx); err != nil {
					b.Fatal(err)
				}
			}
			var fetched int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := core.NewReplica(c.Peers[i%len(c.Peers)], "bench-doc", fmt.Sprintf("joiner%d", i))
				if err := r.Pull(ctx); err != nil {
					b.Fatal(err)
				}
				if r.CommittedTS() != history {
					b.Fatalf("join stopped at %d", r.CommittedTS())
				}
				_, f := r.Stats()
				fetched += f
			}
			b.ReportMetric(float64(fetched)/float64(b.N), "fetches/join")
		})
	}
}

// BenchmarkLogTruncateDeepHistory measures checkpoint-gated log
// reclamation on a deep history, serial (window=1) vs windowed deletes.
// Slots of consecutive timestamps live at independent ring positions, so
// batching the deletes cuts truncation latency the same way FetchRange's
// prefetch cuts retrieval; the simnet adds per-hop latency to make the
// round-trip count visible.
func BenchmarkLogTruncateDeepHistory(b *testing.B) {
	const depth = 64
	for _, window := range []int{1, 8} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			c, err := ringtest.NewCluster(8, ringtest.FastOptions(),
				transport.WithLatency(transport.ConstantLatency(200*time.Microsecond)))
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(c.Stop)
			ctx := context.Background()
			log := c.Peers[0].Log
			log.SetPrefetch(window)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				key := fmt.Sprintf("trunc-doc-%d", i)
				for ts := uint64(1); ts <= depth; ts++ {
					rec := p2plog.Record{Key: key, TS: ts, PatchID: fmt.Sprintf("b#%d", ts), Patch: []byte("payload")}
					if _, err := log.Publish(ctx, rec); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				deleted, err := log.Truncate(ctx, key, depth)
				if err != nil {
					b.Fatal(err)
				}
				if deleted == 0 {
					b.Fatal("nothing deleted")
				}
			}
		})
	}
}

// BenchmarkGatewayFanout measures the serving gateway's commit-to-
// delivery latency as the follower population grows. All followers of a
// document on one gateway share a single feed, so delivery cost must be
// flat in the follower count: the per-op time for followers=1000 should
// match followers=1.
func BenchmarkGatewayFanout(b *testing.B) {
	for _, followers := range []int{1, 100, 1000} {
		b.Run(fmt.Sprintf("followers=%d", followers), func(b *testing.B) {
			c := mustCluster(b, 8, ringtest.FastOptions())
			gcfg := gateway.Config{BatchTick: time.Millisecond, ProbeIdle: 5 * time.Millisecond}
			gwA := gateway.New(c.Peers[0], gcfg)
			b.Cleanup(gwA.Close)
			gwB := gateway.New(c.Peers[1], gcfg)
			b.Cleanup(gwB.Close)
			ed := gwA.Session("w").Editor("bench-doc", "w")
			views := make([]*gateway.Follower, followers)
			for i := range views {
				views[i] = gwB.Session("v").Follower("bench-doc")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ed.Enqueue(fmt.Sprintf("line-%d", i))
				deadline := time.Now().Add(10 * time.Second)
				// One line per iteration and full delivery before the
				// next, so the target timestamp is exactly i+1.
				for {
					done := ed.Replica().CommittedTS() >= uint64(i+1)
					for _, v := range views {
						done = done && v.TS() >= uint64(i+1)
					}
					if done {
						break
					}
					if time.Now().After(deadline) {
						b.Fatalf("delivery of line %d stalled", i)
					}
					time.Sleep(200 * time.Microsecond)
				}
			}
			b.StopTimer()
			if err := ed.Err(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkCoreDHTPut / Get measure the storage substrate.
func BenchmarkCoreDHTPut(b *testing.B) {
	c := mustCluster(b, 8, ringtest.FastOptions())
	ctx := context.Background()
	cl := c.Peers[0].Client
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.Put(ctx, fmt.Sprintf("k-%d", i), []byte("value")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreDHTGet(b *testing.B) {
	c := mustCluster(b, 8, ringtest.FastOptions())
	ctx := context.Background()
	cl := c.Peers[0].Client
	const keys = 64
	for i := 0; i < keys; i++ {
		if err := cl.Put(ctx, fmt.Sprintf("k-%d", i), []byte("value")); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, found, err := cl.Get(ctx, fmt.Sprintf("k-%d", i%keys)); err != nil || !found {
			b.Fatalf("get: %v %v", found, err)
		}
	}
}
